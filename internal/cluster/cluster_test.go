package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/resil"
	"repro/internal/serve"
)

// testPayload is the deterministic per-rank payload used across the tests
// (same generator as the serve tests, so cross-package results line up).
func testPayload(rank, size int) []byte {
	out := make([]byte, size)
	x := uint32(rank*2654435761 + 12345)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

// writeMultifile writes an n-task multifile (two physical files, ~2.5
// chunks per task) and returns each rank's payload.
func writeMultifile(t *testing.T, fsys fsio.FileSystem, name string, n int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	for r := range payloads {
		payloads[r] = testPayload(r, 2500+37*r)
	}
	mpi.Run(n, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, name, sion.WriteMode, &sion.Options{
			ChunkSize: 1024, FSBlockSize: 256, NFiles: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(payloads[c.Rank()]); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	return payloads
}

// faultFS wraps a FileSystem so ReadAt fails on demand — transiently
// (fsio error contract) or permanently. It gives each cluster node its
// own view of the shared backend, so one node's path can fail while its
// peers' stay healthy.
type faultFS struct {
	fsio.FileSystem
	mode atomic.Int32 // 0 healthy, 1 transient, 2 permanent
}

var errPermanentFault = errors.New("cluster test: permanent backend fault")

func (f *faultFS) Open(name string) (fsio.File, error) {
	fh, err := f.FileSystem.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: fh, fs: f}, nil
}

type faultFile struct {
	fsio.File
	fs *faultFS
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	switch h.fs.mode.Load() {
	case 1:
		return 0, fmt.Errorf("injected fault: %w", fsio.ErrTransient)
	case 2:
		return 0, errPermanentFault
	}
	return h.File.ReadAt(p, off)
}

// checkRank reads rank r's full stream through the cluster and compares.
func checkRank(t *testing.T, cl *Cluster, r int, want []byte) {
	t.Helper()
	h, err := cl.Open(r)
	if err != nil {
		t.Fatalf("rank %d: Open: %v", r, err)
	}
	got := make([]byte, len(want))
	if _, err := h.ReadLogicalAt(got, 0); err != nil {
		t.Fatalf("rank %d: ReadLogicalAt: %v", r, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rank %d: bytes differ through the cluster", r)
	}
}

// TestClusterByteIdentity pins the basic contract: a 3-node cluster
// serves every rank's stream byte-identically, full reads and unaligned
// windows alike, and the routing counters move.
func TestClusterByteIdentity(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "c.sion", 8)
	cl := New(&Config{VNodes: 16})
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Join(fmt.Sprintf("n%d", i), fsys, "c.sion", &serve.Config{CacheBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	for r, want := range payloads {
		checkRank(t, cl, r, want)
	}
	// Unaligned windows through a handle cursor.
	h, err := cl.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads[3]
	for _, off := range []int64{1, 255, 256, 1000, int64(len(want)) - 7} {
		buf := make([]byte, 131)
		n, err := h.ReadLogicalAt(buf, off)
		if err != nil && !errors.Is(err, io.EOF) {
			t.Fatalf("offset %d: %v", off, err)
		}
		if n == 0 || !bytes.Equal(buf[:n], want[off:off+int64(n)]) {
			t.Fatalf("offset %d: window differs (%d bytes)", off, n)
		}
	}
	st := cl.Stats()
	if st.Nodes != 3 || st.Requests == 0 || st.Serve.BackendReads == 0 || st.HandlesOpened == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.AllReplicasDown != 0 {
		t.Fatalf("healthy cluster counted %d all-replicas-down reads", st.AllReplicasDown)
	}
	if len(cl.Health()) != 3 || cl.Degraded() {
		t.Fatalf("healthy 3-node cluster reports degraded health: %+v", cl.Health())
	}
}

// TestClusterJoinPeerFillsRemappedBlocks pins the cluster's headline
// economics: after the working set is cached once cluster-wide, a new
// node joining takes over ~1/N of the blocks and warms them from its
// peers' caches — zero new backend reads.
func TestClusterJoinPeerFillsRemappedBlocks(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "j.sion", 8)
	cl := New(&Config{VNodes: 16})
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Join(fmt.Sprintf("n%d", i), fsys, "j.sion", &serve.Config{CacheBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	for r, want := range payloads {
		checkRank(t, cl, r, want)
	}
	warm := cl.Stats().Serve
	if warm.BackendReads == 0 {
		t.Fatal("warm-up issued no backend reads")
	}

	if _, err := cl.Join("n9", fsys, "j.sion", &serve.Config{CacheBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	for r, want := range payloads {
		checkRank(t, cl, r, want)
	}
	after := cl.Stats().Serve
	if after.BackendReads != warm.BackendReads {
		t.Fatalf("join forced %d extra backend reads (%d -> %d): remapped blocks must peer-fill",
			after.BackendReads-warm.BackendReads, warm.BackendReads, after.BackendReads)
	}
	if after.PeerFills == 0 {
		t.Fatal("no peer fills counted after a join remapped blocks")
	}
}

// TestClusterHotReplicationAndRotation pins hot-block handling: after
// RebalanceHot a block past HotMinHits is resident on ReplicateHot nodes
// (replicas warmed via peer fill, not the backend), and subsequent reads
// rotate across the replicas.
func TestClusterHotReplicationAndRotation(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "h.sion", 8)
	cl := New(&Config{VNodes: 16, ReplicateHot: 2, HotMinHits: 4})
	defer cl.Close()
	nodes := make([]*Node, 3)
	for i := range nodes {
		n, err := cl.Join(fmt.Sprintf("n%d", i), fsys, "h.sion", &serve.Config{CacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	h, err := cl.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64) // within one 256-byte cache block
	for i := 0; i < 8; i++ {
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Identify the hot block from the owning node's LRU report.
	var hotFile int
	var hotBlock int64
	found := false
	for _, n := range nodes {
		if hb := n.Server().HotBlocks(4); len(hb) > 0 {
			hotFile, hotBlock, found = hb[0].File, hb[0].Block, true
			break
		}
	}
	if !found {
		t.Fatal("no node reports a hot block after 8 identical reads")
	}
	holders := func() (hold []*Node) {
		for _, n := range nodes {
			if _, ok := n.Server().Peek(hotFile, hotBlock); ok {
				hold = append(hold, n)
			}
		}
		return hold
	}
	if h := holders(); len(h) != 1 {
		t.Fatalf("before rebalance the hot block is on %d nodes, want exactly its primary", len(h))
	}
	backendBefore := cl.Stats().Serve.BackendReads

	if n := cl.RebalanceHot(); n == 0 {
		t.Fatal("RebalanceHot tracked nothing")
	}
	if cl.HotTracked() == 0 {
		t.Fatal("hot set empty after rebalance")
	}
	hold := holders()
	if len(hold) < 2 {
		t.Fatalf("hot block replicated to %d nodes, want >= 2", len(hold))
	}
	if got := cl.Stats().Serve.BackendReads; got != backendBefore {
		t.Fatalf("replication read the backend (%d -> %d reads): replicas must warm via peer fill",
			backendBefore, got)
	}

	// Reads now rotate across the replicas: both holders' hit counters move.
	before := make([]int64, len(hold))
	for i, n := range hold {
		before[i] = n.Server().Stats().Hits
	}
	for i := 0; i < 8; i++ {
		if _, err := h.ReadLogicalAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range hold {
		if n.Server().Stats().Hits == before[i] {
			t.Fatalf("replica %s saw no reads: hot reads are not rotating", n.ID)
		}
	}
	if !bytes.Equal(buf, payloads[0][:64]) {
		t.Fatal("rotated reads returned wrong bytes")
	}
}

// TestClusterFailoverRoutesAroundFaults pins failure routing: a node
// whose backend path fails transiently is failed over (the ring
// successor answers, byte-identically), while a permanent error is
// returned to the caller without burning the other replicas.
func TestClusterFailoverRoutesAroundFaults(t *testing.T) {
	inner := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, inner, "f.sion", 8)
	sick := &faultFS{FileSystem: inner}
	scfg := func() *serve.Config {
		return &serve.Config{CacheBytes: 1 << 20, Retry: &resil.Budget{MaxAttempts: 1}}
	}
	cl := New(&Config{VNodes: 16})
	defer cl.Close()
	if _, err := cl.Join("sick", sick, "f.sion", scfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join("well", inner, "f.sion", scfg()); err != nil {
		t.Fatal(err)
	}
	sick.mode.Store(1) // every backend read on "sick" now fails transiently
	for r, want := range payloads {
		checkRank(t, cl, r, want) // must succeed via failover
	}
	st := cl.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers counted though one node's backend was down")
	}
	if st.AllReplicasDown != 0 {
		t.Fatalf("%d reads exhausted all replicas though one node was healthy", st.AllReplicasDown)
	}
}

// TestClusterPermanentErrorNoFailover pins the other half of the routing
// policy: a permanent backend error is the backend answering, so it is
// returned as-is instead of being retried on every replica.
func TestClusterPermanentErrorNoFailover(t *testing.T) {
	inner := fsio.NewOS(t.TempDir())
	writeMultifile(t, inner, "p.sion", 4)
	bad := &faultFS{FileSystem: inner}
	cl := New(&Config{VNodes: 16})
	defer cl.Close()
	cfg := &serve.Config{CacheBytes: 1 << 20, Retry: &resil.Budget{MaxAttempts: 1}}
	if _, err := cl.Join("a", bad, "p.sion", cfg); err != nil {
		t.Fatal(err)
	}
	bad.mode.Store(2)
	h, err := cl.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	_, err = h.ReadLogicalAt(buf, 0)
	if !errors.Is(err, errPermanentFault) {
		t.Fatalf("read error %v does not carry the backend's permanent error", err)
	}
	if errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("permanent backend error disguised as degradation: %v", err)
	}
	st := cl.Stats()
	if st.Failovers != 0 || st.AllReplicasDown != 0 {
		t.Fatalf("permanent error burned replicas: %+v", st)
	}
}

// TestClusterAllReplicasDegraded pins the terminal failure mode: when
// every replica's backend is down and nothing is cached, reads fail with
// a typed serve.ErrDegraded and the all-replicas-down counter moves.
func TestClusterAllReplicasDegraded(t *testing.T) {
	inner := fsio.NewOS(t.TempDir())
	writeMultifile(t, inner, "d.sion", 4)
	a := &faultFS{FileSystem: inner}
	b := &faultFS{FileSystem: inner}
	cl := New(&Config{VNodes: 16})
	defer cl.Close()
	cfg := &serve.Config{CacheBytes: 1 << 20, Retry: &resil.Budget{MaxAttempts: 1}}
	if _, err := cl.Join("a", a, "d.sion", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join("b", b, "d.sion", cfg); err != nil {
		t.Fatal(err)
	}
	a.mode.Store(1)
	b.mode.Store(1)
	h, err := cl.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := h.ReadLogicalAt(buf, 0); !errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("all-down read failed with %v, want a typed serve.ErrDegraded", err)
	}
	if cl.Stats().AllReplicasDown == 0 {
		t.Fatal("all-replicas-down counter did not move")
	}
	// Recovery: heal the backends and the same handle serves again.
	a.mode.Store(0)
	b.mode.Store(0)
	if _, err := h.ReadLogicalAt(buf, 0); err != nil && !errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("healed read: %v", err)
	}
}

// TestClusterMembership pins the membership API's error contract.
func TestClusterMembership(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "m.sion", 4)
	cl := New(nil)
	cfg := &serve.Config{CacheBytes: 1 << 20}

	if _, err := cl.Open(0); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Open on an empty cluster: %v, want ErrNoNodes", err)
	}
	if _, err := cl.Join("a", fsys, "m.sion", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join("a", fsys, "m.sion", cfg); err == nil {
		t.Fatal("duplicate node id joined")
	}
	if _, err := cl.Join("b", fsys, "other.sion", cfg); err == nil {
		t.Fatal("join with a different multifile name succeeded")
	}
	if err := cl.Leave("ghost"); err == nil {
		t.Fatal("leave of an unknown node succeeded")
	}
	if _, err := cl.Join("b", fsys, "m.sion", cfg); err != nil {
		t.Fatal(err)
	}
	checkRank(t, cl, 0, payloads[0])
	if err := cl.Leave("a"); err != nil {
		t.Fatal(err)
	}
	checkRank(t, cl, 1, payloads[1]) // one node remains: still serving
	if err := cl.Leave("b"); err != nil {
		t.Fatal(err)
	}
	h, err := cl.Open(0) // layout is known; routing must fail
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadLogicalAt(make([]byte, 8), 0); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("read with no nodes: %v, want ErrNoNodes", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v (want nil — Close must be idempotent)", err)
	}
	if _, err := cl.Join("c", fsys, "m.sion", cfg); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("join after Close: %v, want ErrClusterClosed", err)
	}
	if _, err := h.ReadLogicalAt(make([]byte, 8), 0); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("read after Close: %v, want ErrClusterClosed", err)
	}
}

// TestClusterConcurrentChurnRace is the -race exercise for the serving
// tier: concurrent clients Open and read through the router while nodes
// join and leave, stats/health/hot-rebalance run, and — on a second,
// live multifile — a tail server's Tail/Follow/Poll/Stats/Health are
// driven alongside. Reads must stay byte-identical throughout (a core
// node never leaves, so every block always has a live replica).
func TestClusterConcurrentChurnRace(t *testing.T) {
	fsys := fsio.NewOS(t.TempDir())
	payloads := writeMultifile(t, fsys, "r.sion", 6)
	cl := New(&Config{VNodes: 16, HotMinHits: 2})
	defer cl.Close()
	for i := 0; i < 2; i++ { // the core: never leaves
		if _, err := cl.Join(fmt.Sprintf("core-%d", i), fsys, "r.sion", &serve.Config{CacheBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
	}

	// A live multifile for the tail half of the exercise.
	const tailBytes = 20000
	tailPayload := testPayload(99, tailBytes)
	firstCommit := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		mpi.Run(1, func(c *mpi.Comm) {
			f, err := sion.ParOpen(c, fsys, "live.sion", sion.WriteMode, &sion.Options{
				ChunkSize: 1024, FSBlockSize: 256, Watermarks: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			for off := 0; off < tailBytes; off += 1000 {
				if _, err := f.Write(tailPayload[off : off+1000]); err != nil {
					t.Error(err)
				}
				if err := f.Flush(); err != nil {
					t.Error(err)
				}
				if off == 0 {
					close(firstCommit)
				}
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		})
	}()
	<-firstCommit
	ts, err := serve.NewTail(fsys, "live.sion", &serve.Config{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Cluster readers: fresh handles, full-stream identity checks.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := (g + i) % len(payloads)
				h, err := cl.Open(r)
				if err != nil {
					t.Errorf("churn Open rank %d: %v", r, err)
					return
				}
				got := make([]byte, len(payloads[r]))
				if _, err := h.ReadLogicalAt(got, 0); err != nil {
					t.Errorf("churn read rank %d: %v", r, err)
					return
				}
				if !bytes.Equal(got, payloads[r]) {
					t.Errorf("churn read rank %d: bytes differ", r)
					return
				}
			}
		}(g)
	}
	// Stats / health / hot-rebalance observers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = cl.Stats()
			_ = cl.Health()
			_ = cl.Degraded()
			_ = cl.RebalanceHot()
			_ = ts.Stats()
			_ = ts.Health()
		}
	}()
	// Tail follower: drains the live stream to EOF with byte identity.
	wg.Add(1)
	var tailOK atomic.Bool
	go func() {
		defer wg.Done()
		sess, err := ts.Tail(0)
		if err != nil {
			t.Errorf("Tail: %v", err)
			return
		}
		var got []byte
		buf := make([]byte, 333)
		for {
			n, err := sess.Follow(buf, func() bool { time.Sleep(time.Millisecond); return true })
			got = append(got, buf[:n]...)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Errorf("Follow: %v", err)
				}
				break
			}
		}
		if bytes.Equal(got, tailPayload) {
			tailOK.Store(true)
		} else {
			t.Errorf("tailed stream differs: %d bytes, want %d", len(got), tailBytes)
		}
	}()
	// Membership churn: transient nodes join and leave under the readers.
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("churn-%d", i)
		if _, err := cl.Join(id, fsys, "r.sion", &serve.Config{CacheBytes: 1 << 20}); err != nil {
			t.Fatalf("churn join %s: %v", id, err)
		}
		if err := cl.Leave(id); err != nil {
			t.Fatalf("churn leave %s: %v", id, err)
		}
	}
	<-writerDone
	close(stop)
	wg.Wait()
	if !tailOK.Load() {
		t.Fatal("tail follower did not drain the live stream byte-identically")
	}
	for r, want := range payloads { // final identity after all churn
		checkRank(t, cl, r, want)
	}
	if got := len(cl.NodeIDs()); got != 2 {
		t.Fatalf("%d nodes after churn, want the 2 core nodes", got)
	}
}
