package mpi

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

// runBoth runs body under both the real and the simulated runtime, so every
// test exercises both code paths.
func runBoth(t *testing.T, n int, body func(*Comm)) {
	t.Helper()
	t.Run("real", func(t *testing.T) { Run(n, body) })
	t.Run("sim", func(t *testing.T) { RunSim(vtime.NewEngine(), n, DefaultCost, body) })
}

func TestSendRecvPair(t *testing.T) {
	runBoth(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
			if got := c.Recv(1, 8); string(got) != "pong" {
				t.Errorf("got %q", got)
			}
		} else {
			if got := c.Recv(0, 7); string(got) != "ping" {
				t.Errorf("got %q", got)
			}
			c.Send(0, 8, []byte("pong"))
		}
	})
}

func TestSendBuffersAreCopied(t *testing.T) {
	runBoth(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			c.Send(1, 0, buf)
			copy(buf, "XXXX") // must not affect the delivered message
			c.Barrier()
		} else {
			c.Barrier()
			if got := c.Recv(0, 0); string(got) != "aaaa" {
				t.Errorf("got %q, want aaaa (send must copy)", got)
			}
		}
	})
}

func TestMessageOrderingSameKey(t *testing.T) {
	runBoth(t, 2, func(c *Comm) {
		const k = 20
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				if got := c.Recv(0, 3); got[0] != byte(i) {
					t.Errorf("message %d: got %d", i, got[0])
				}
			}
		}
	})
}

func TestTagsDoNotCross(t *testing.T) {
	runBoth(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive in reverse tag order.
			if got := c.Recv(0, 2); string(got) != "two" {
				t.Errorf("tag2 got %q", got)
			}
			if got := c.Recv(0, 1); string(got) != "one" {
				t.Errorf("tag1 got %q", got)
			}
		}
	})
}

func TestBarrierCounts(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var before, after int64
			runBoth(t, n, func(c *Comm) {
				atomic.AddInt64(&before, 1)
				c.Barrier()
				if v := atomic.LoadInt64(&before); int(v)%int64size(n) != 0 && v < int64(n) {
					// All ranks must have incremented before any passes.
					t.Errorf("barrier passed with before=%d of %d", v, n)
				}
				atomic.AddInt64(&after, 1)
			})
		})
	}
}

func int64size(n int) int { return n } // clarity helper for the modulo above

func TestBcastAllRoots(t *testing.T) {
	const n = 7
	for root := 0; root < n; root++ {
		root := root
		runBoth(t, n, func(c *Comm) {
			var payload []byte
			if c.Rank() == root {
				payload = []byte(fmt.Sprintf("from-%d", root))
			}
			got := c.Bcast(root, payload)
			want := fmt.Sprintf("from-%d", root)
			if string(got) != want {
				t.Errorf("rank %d: got %q want %q", c.Rank(), got, want)
			}
		})
	}
}

func TestGathervScattervRoundTrip(t *testing.T) {
	const n = 9
	runBoth(t, n, func(c *Comm) {
		mine := bytes.Repeat([]byte{byte(c.Rank() + 1)}, c.Rank()+1)
		parts := c.Gatherv(2, mine)
		if c.Rank() == 2 {
			for r, p := range parts {
				want := bytes.Repeat([]byte{byte(r + 1)}, r+1)
				if !bytes.Equal(p, want) {
					t.Errorf("gathered[%d] = %v", r, p)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root got parts")
		}
		// Scatter back.
		back := c.Scatterv(2, parts)
		if !bytes.Equal(back, mine) {
			t.Errorf("rank %d scatter∘gather != id: %v", c.Rank(), back)
		}
	})
}

func TestAllgatherv(t *testing.T) {
	const n = 6
	runBoth(t, n, func(c *Comm) {
		all := c.Allgatherv([]byte{byte(10 + c.Rank())})
		if len(all) != n {
			t.Fatalf("len = %d", len(all))
		}
		for r, p := range all {
			if len(p) != 1 || p[0] != byte(10+r) {
				t.Errorf("all[%d] = %v", r, p)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	const n = 10
	runBoth(t, n, func(c *Comm) {
		sum := c.AllreduceInt64(OpSum, int64(c.Rank()+1))
		if sum != n*(n+1)/2 {
			t.Errorf("sum = %d", sum)
		}
		max := c.AllreduceInt64(OpMax, int64(c.Rank()))
		if max != n-1 {
			t.Errorf("max = %d", max)
		}
		min := c.AllreduceInt64(OpMin, int64(c.Rank()+5))
		if min != 5 {
			t.Errorf("min = %d", min)
		}
	})
}

func TestSplitEvenOdd(t *testing.T) {
	const n = 11
	runBoth(t, n, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		wantSize := (n + 1) / 2
		if c.Rank()%2 == 1 {
			wantSize = n / 2
		}
		if sub.Size() != wantSize {
			t.Errorf("rank %d: sub size = %d want %d", c.Rank(), sub.Size(), wantSize)
		}
		if sub.GlobalRank() != c.Rank() {
			t.Errorf("global rank mismatch")
		}
		// Sub-communicator collectives work and don't cross groups.
		sum := sub.AllreduceInt64(OpSum, int64(c.Rank()))
		want := int64(0)
		for r := 0; r < n; r++ {
			if r%2 == c.Rank()%2 {
				want += int64(r)
			}
		}
		if sum != want {
			t.Errorf("rank %d: sub sum = %d want %d", c.Rank(), sum, want)
		}
	})
}

func TestSplitNegativeColor(t *testing.T) {
	runBoth(t, 4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Errorf("negative color must yield nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		sub.Barrier()
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const n = 5
	runBoth(t, n, func(c *Comm) {
		// Reverse the order via key.
		sub := c.Split(0, n-c.Rank())
		if sub.Rank() != n-1-c.Rank() {
			t.Errorf("rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), n-1-c.Rank())
		}
	})
}

func TestTypedHelpers(t *testing.T) {
	const n = 6
	runBoth(t, n, func(c *Comm) {
		vals := c.GatherInt64(0, int64(c.Rank()*c.Rank()))
		if c.Rank() == 0 {
			for r, v := range vals {
				if v != int64(r*r) {
					t.Errorf("vals[%d] = %d", r, v)
				}
			}
		}
		var offsets []int64
		if c.Rank() == 0 {
			offsets = make([]int64, n)
			for i := range offsets {
				offsets[i] = int64(100 * i)
			}
		}
		off := c.ScatterInt64(0, offsets)
		if off != int64(100*c.Rank()) {
			t.Errorf("rank %d: off = %d", c.Rank(), off)
		}
		got := c.BcastInt64s(1, []int64{7, 8, 9})
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Errorf("bcast got %v", got)
		}
		slices := c.GatherInt64Slice(0, []int64{int64(c.Rank()), int64(c.Rank() + 1)})
		if c.Rank() == 0 {
			for r, s := range slices {
				if len(s) != 2 || s[0] != int64(r) || s[1] != int64(r+1) {
					t.Errorf("slices[%d] = %v", r, s)
				}
			}
		}
	})
}

// Simulated-time semantics: a barrier must advance every clock to at least
// the latest entry time.
func TestSimBarrierTime(t *testing.T) {
	e := vtime.NewEngine()
	const n = 4
	times := make([]float64, n)
	RunSim(e, n, DefaultCost, func(c *Comm) {
		c.Advance(float64(c.Rank())) // rank r enters at t=r
		c.Barrier()
		times[c.Rank()] = c.Now()
	})
	for r, ts := range times {
		if ts < float64(n-1) {
			t.Errorf("rank %d passed barrier at %g, before slowest entry %d", r, ts, n-1)
		}
	}
}

// Simulated message cost: a 1 MB transfer at 400 MB/s should take ~2.5 ms.
func TestSimTransferCost(t *testing.T) {
	e := vtime.NewEngine()
	var recvT float64
	RunSim(e, 2, CostModel{Latency: 1e-3, Bandwidth: 400e6}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 1<<20))
		} else {
			c.Recv(0, 0)
			recvT = c.Now()
		}
	})
	want := 1e-3 + float64(1<<20)/400e6
	if recvT < want*0.99 || recvT > want*1.5 {
		t.Errorf("recv completed at %g, want ≈ %g", recvT, want)
	}
}

// Determinism: the same simulated program must produce identical final
// clocks across runs.
func TestSimDeterminism(t *testing.T) {
	run := func() []float64 {
		e := vtime.NewEngine()
		const n = 8
		out := make([]float64, n)
		RunSim(e, n, DefaultCost, func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.AllreduceInt64(OpSum, int64(c.Rank()))
				sub := c.Split(c.Rank()%2, c.Rank())
				sub.Barrier()
			}
			out[c.Rank()] = c.Now()
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic sim: run1[%d]=%g run2[%d]=%g", i, a[i], i, b[i])
		}
	}
}

// Property: gather∘scatter is the identity for arbitrary payloads.
func TestGatherScatterProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		n := len(payloads)
		if n == 0 || n > 12 {
			return true
		}
		ok := int64(1)
		Run(n, func(c *Comm) {
			parts := c.Gatherv(0, payloads[c.Rank()])
			got := c.Scatterv(0, parts)
			if !bytes.Equal(got, payloads[c.Rank()]) {
				atomic.StoreInt64(&ok, 0)
			}
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSimWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("large world in -short mode")
	}
	e := vtime.NewEngine()
	const n = 4096
	var sum int64
	RunSim(e, n, DefaultCost, func(c *Comm) {
		v := c.AllreduceInt64(OpSum, 1)
		if c.Rank() == 0 {
			sum = v
		}
	})
	if sum != n {
		t.Fatalf("sum = %d", sum)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 7
	runBoth(t, n, func(c *Comm) {
		parts := make([][]byte, n)
		for dst := range parts {
			// Distinct payload per (src, dst) pair; empty when dst < src.
			if dst >= c.Rank() {
				parts[dst] = bytes.Repeat([]byte{byte(c.Rank()*16 + dst)}, c.Rank()+dst+1)
			}
		}
		got := c.Alltoallv(parts)
		for src := range got {
			if c.Rank() < src {
				if len(got[src]) != 0 {
					t.Errorf("rank %d: expected empty from %d, got %d bytes", c.Rank(), src, len(got[src]))
				}
				continue
			}
			want := bytes.Repeat([]byte{byte(src*16 + c.Rank())}, src+c.Rank()+1)
			if !bytes.Equal(got[src], want) {
				t.Errorf("rank %d: from %d got %v want %v", c.Rank(), src, got[src], want)
			}
		}
	})
}

func TestAlltoallvSelfOnly(t *testing.T) {
	runBoth(t, 1, func(c *Comm) {
		got := c.Alltoallv([][]byte{[]byte("me")})
		if string(got[0]) != "me" {
			t.Errorf("got %q", got[0])
		}
	})
}

func TestInvalidRankPanics(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for _, fn := range []func(){
			func() { c.Send(5, 0, nil) },
			func() { c.Recv(-1, 0) },
			func() { c.Bcast(9, nil) },
			func() { c.Scatterv(0, [][]byte{nil}) }, // wrong part count
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("invalid argument did not panic")
					}
				}()
				fn()
			}()
		}
	})
}

func TestGlobalRankThroughSplit(t *testing.T) {
	runBoth(t, 6, func(c *Comm) {
		sub := c.Split(c.Rank()/3, c.Rank())
		if sub.GlobalRank() != c.Rank() {
			t.Errorf("global rank lost through split: %d vs %d", sub.GlobalRank(), c.Rank())
		}
		// Nested split.
		subsub := sub.Split(sub.Rank()%2, 0)
		if subsub.GlobalRank() != c.Rank() {
			t.Errorf("global rank lost through nested split")
		}
	})
}

func TestTryRecv(t *testing.T) {
	runBoth(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			// Nothing sent yet: must not block and must report absence.
			if _, ok := c.TryRecv(1, 5); ok {
				t.Error("TryRecv returned a message before any send")
			}
			c.Send(1, 4, nil) // let rank 1 proceed
			// Wait for the data to be sent, then poll until it arrives.
			c.Recv(1, 6)
			for {
				if got, ok := c.TryRecv(1, 5); ok {
					if string(got) != "payload" {
						t.Errorf("TryRecv got %q", got)
					}
					break
				}
				// In sim mode the message may still be in flight: advance
				// past its arrival time instead of spinning.
				c.Advance(1e-3)
			}
			// Queue drained.
			if _, ok := c.TryRecv(1, 5); ok {
				t.Error("TryRecv returned a second message")
			}
		} else {
			c.Recv(0, 4)
			c.Send(0, 5, []byte("payload"))
			c.Send(0, 6, nil)
		}
	})
}

// In simulated mode TryRecv must not deliver a message whose virtual
// arrival time is still in the receiver's future.
func TestTryRecvRespectsArrivalTime(t *testing.T) {
	RunSim(vtime.NewEngine(), 2, CostModel{Latency: 1e-3, Bandwidth: 1e6}, func(c *Comm) {
		if c.Rank() == 1 {
			// Sent at t=0: enqueued once the sender's latency advance
			// completes (t=1ms), arriving at t=2ms (latency + 1ms wire).
			c.Send(0, 9, make([]byte, 1000))
			return
		}
		// t=1.5ms: the message is queued but still in flight — the
		// arrival guard must hold it back.
		c.Advance(1.5e-3)
		if _, ok := c.TryRecv(1, 9); ok {
			t.Error("TryRecv delivered a message before its virtual arrival time")
		}
		c.Advance(5e-3) // well past arrival
		if _, ok := c.TryRecv(1, 9); !ok {
			t.Error("message should have arrived by now")
		}
	})
}
