package mpi

import (
	"fmt"
	"sort"
)

// Reserved internal tags for collectives; user tags must be >= 0.
const (
	tagBarrierUp = -1 - iota
	tagBarrierDown
	tagBcast
	tagGather
	tagScatter
	tagReduce
	tagSplit
	tagAlltoall
)

// Barrier blocks until every rank of the communicator has entered it.
// Implemented as a binomial fan-in to rank 0 followed by a binomial
// fan-out, so the simulated cost is O(log P) message latencies.
func (c *Comm) Barrier() {
	c.fanIn(tagBarrierUp, nil)
	c.fanOut(tagBarrierDown, nil)
}

// fanIn sends a token up a binomial tree rooted at rank 0.
// Each rank first waits for all its children, then reports to its parent.
func (c *Comm) fanIn(tag int, payload []byte) {
	n, r := len(c.group), c.rank
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			c.Send(r^mask, tag, payload)
			return
		}
		if r|mask < n {
			c.Recv(r|mask, tag)
		}
	}
}

// fanOut propagates a token down a binomial tree rooted at rank 0 and
// returns the payload received (rank 0 returns payload unchanged).
func (c *Comm) fanOut(tag int, payload []byte) []byte {
	n, r := len(c.group), c.rank
	// Find the highest mask so we can walk the tree top-down.
	top := 1
	for top < n {
		top <<= 1
	}
	if r != 0 {
		// Wait for the parent's token.
		mask := 1
		for r&mask == 0 {
			mask <<= 1
		}
		payload = c.Recv(r^mask, tag)
		// Forward to children below that mask.
		for m := mask >> 1; m >= 1; m >>= 1 {
			if r|m < n && r&m == 0 {
				c.Send(r|m, tag, payload)
			}
		}
		return payload
	}
	for m := top >> 1; m >= 1; m >>= 1 {
		if m < n {
			c.Send(m, tag, payload)
		}
	}
	return payload
}

// Bcast broadcasts data from root to all ranks and returns the payload on
// every rank (root included).
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.checkRoot(root)
	// Rotate so the tree is rooted at `root`.
	rc := c.rotated(root)
	return rc.fanOut(tagBcast, data)
}

// Gatherv gathers each rank's byte slice at root. On root it returns one
// slice per rank (in rank order); on other ranks it returns nil.
// The gather is root-centric (linear), matching how an MPI_Gatherv of
// variable-size metadata behaves at the root.
func (c *Comm) Gatherv(root int, data []byte) [][]byte {
	c.checkRoot(root)
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, len(c.group))
	for r := range c.group {
		if r == root {
			buf := make([]byte, len(data))
			copy(buf, data)
			out[r] = buf
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Scatterv distributes parts[r] to each rank r from root and returns the
// caller's part. On non-root ranks, parts is ignored.
func (c *Comm) Scatterv(root int, parts [][]byte) []byte {
	c.checkRoot(root)
	if c.rank == root {
		if len(parts) != len(c.group) {
			panic(fmt.Sprintf("mpi: Scatterv with %d parts for %d ranks", len(parts), len(c.group)))
		}
		var own []byte
		for r := range c.group {
			if r == root {
				own = make([]byte, len(parts[r]))
				copy(own, parts[r])
				continue
			}
			c.Send(r, tagScatter, parts[r])
		}
		return own
	}
	return c.Recv(root, tagScatter)
}

// Allgatherv gathers every rank's slice on every rank (rank order).
func (c *Comm) Allgatherv(data []byte) [][]byte {
	parts := c.Gatherv(0, data)
	// Broadcast the concatenation with a length prefix per part.
	var flat []byte
	if c.rank == 0 {
		for _, p := range parts {
			flat = appendUvarint(flat, uint64(len(p)))
			flat = append(flat, p...)
		}
	}
	flat = c.Bcast(0, flat)
	out := make([][]byte, len(c.group))
	for r := range out {
		l, n := takeUvarint(flat)
		flat = flat[n:]
		out[r] = flat[:l:l]
		flat = flat[l:]
	}
	return out
}

// ReduceOp is a reduction operator over int64.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic("mpi: unknown ReduceOp")
}

// AllreduceInt64 reduces val across all ranks with op and returns the
// result on every rank (binomial reduce to 0, then broadcast).
func (c *Comm) AllreduceInt64(op ReduceOp, val int64) int64 {
	n, r := len(c.group), c.rank
	acc := val
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			c.Send(r^mask, tagReduce, encodeInt64s([]int64{acc}))
			break
		}
		if r|mask < n {
			v := decodeInt64s(c.Recv(r|mask, tagReduce))
			acc = op.apply(acc, v[0])
		}
	}
	out := c.Bcast(0, encodeInt64s([]int64{acc}))
	return decodeInt64s(out)[0]
}

// Split partitions the communicator: ranks passing the same color form a
// new communicator, ordered by (key, old rank). Every rank must call Split
// (it is collective). Ranks passing a negative color receive nil.
//
// Because this runtime is in-process, the membership tables are computed
// once at rank 0 and shared read-only with the members instead of being
// broadcast by value; at 64K ranks this avoids copying gigabytes while
// keeping MPI_Comm_split's collective semantics (gather + broadcast sync).
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ color, key, rank int }
	all := c.Gatherv(0, encodeInt64s([]int64{int64(color), int64(key)}))
	c.splits++
	token := fmt.Sprintf("%s/%d", c.cid, c.splits)
	if c.rank == 0 {
		members := make([]ck, 0, len(all))
		for r, b := range all {
			v := decodeInt64s(b)
			if v[0] >= 0 {
				members = append(members, ck{int(v[0]), int(v[1]), r})
			}
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].color != members[j].color {
				return members[i].color < members[j].color
			}
			if members[i].key != members[j].key {
				return members[i].key < members[j].key
			}
			return members[i].rank < members[j].rank
		})
		assign := make(map[int]splitAssign, len(members))
		for i := 0; i < len(members); {
			j := i
			for j < len(members) && members[j].color == members[i].color {
				j++
			}
			group := make([]int, j-i)
			for k := i; k < j; k++ {
				group[k-i] = c.group[members[k].rank]
			}
			for k := i; k < j; k++ {
				assign[members[k].rank] = splitAssign{
					group: group, rank: k - i, color: members[i].color,
				}
			}
			i = j
		}
		c.w.storeSplit(token, assign, len(c.group))
	}
	// The broadcast both synchronizes and publishes the shared table.
	c.Bcast(0, nil)
	a, ok := c.w.takeSplit(token, c.rank)
	if color < 0 {
		return nil
	}
	if !ok {
		panic("mpi: Split: missing assignment (inconsistent collective call?)")
	}
	return &Comm{
		w:     c.w,
		cid:   fmt.Sprintf("%s.%d", token, a.color),
		rank:  a.rank,
		group: a.group,
	}
}

// Alltoallv delivers parts[r] to each rank r and returns one slice per
// source rank. parts may be nil entries for empty sends; parts[own rank]
// is returned in place (copied). It is implemented with a ring schedule
// (rank r sends to r+1, r+2, … with matching receives) so no rank floods
// another, matching how message-passing codes exchange, e.g., migrating
// particles.
func (c *Comm) Alltoallv(parts [][]byte) [][]byte {
	n := len(c.group)
	if len(parts) != n {
		panic(fmt.Sprintf("mpi: Alltoallv with %d parts for %d ranks", len(parts), n))
	}
	out := make([][]byte, n)
	own := make([]byte, len(parts[c.rank]))
	copy(own, parts[c.rank])
	out[c.rank] = own
	for step := 1; step < n; step++ {
		dst := (c.rank + step) % n
		src := (c.rank - step + n) % n
		c.Send(dst, tagAlltoall, parts[dst])
		out[src] = c.Recv(src, tagAlltoall)
	}
	return out
}

// rotated returns a view of the communicator with ranks renumbered so that
// `root` becomes rank 0; message traffic stays on the parent's context.
func (c *Comm) rotated(root int) *Comm {
	if root == 0 {
		return c
	}
	n := len(c.group)
	group := make([]int, n)
	for i := 0; i < n; i++ {
		group[i] = c.group[(i+root)%n]
	}
	return &Comm{w: c.w, cid: c.cid + "@" + itoa(root), rank: (c.rank - root + n) % n, group: group}
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= len(c.group) {
		panic(fmt.Sprintf("mpi: invalid root %d (size %d)", root, len(c.group)))
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
