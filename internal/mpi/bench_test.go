package mpi

import (
	"testing"

	"repro/internal/vtime"
)

func BenchmarkBarrier64Real(b *testing.B) {
	Run(64, func(c *Comm) {
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
	})
}

func BenchmarkAllreduce64Real(b *testing.B) {
	Run(64, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.AllreduceInt64(OpSum, int64(c.Rank()))
		}
	})
}

func BenchmarkGatherv64Real(b *testing.B) {
	payload := make([]byte, 64)
	Run(64, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.Gatherv(0, payload)
		}
	})
}

// Allocation pressure of the typed slice collectives on the ParOpen
// critical path: the root decodes gathers into one flat array (slice
// views per rank) and flat-encodes scatters, so allocations stay O(1) in
// the rank count instead of O(ranks) per collective.
func BenchmarkGatherScatterInt64Slice64(b *testing.B) {
	b.ReportAllocs()
	Run(64, func(c *Comm) {
		vals := []int64{int64(c.Rank()), 42, 7}
		for i := 0; i < b.N; i++ {
			all := c.GatherInt64Slice(0, vals)
			c.ScatterInt64Slice(0, all)
		}
	})
}

// Simulated-mode cost: how fast the engine retires collectives at scale.
func BenchmarkSimWorld4096ParOpenShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := vtime.NewEngine()
		RunSim(e, 4096, DefaultCost, func(c *Comm) {
			c.GatherInt64(0, int64(c.Rank()))
			sub := c.Split(c.Rank()%16, c.Rank())
			sub.GatherInt64(0, 1)
			sub.Barrier()
		})
	}
}
