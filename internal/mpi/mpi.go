// Package mpi is a small in-process message-passing runtime standing in for
// MPI, which the paper's SIONlib uses for internal metadata exchange.
//
// It provides ranks, communicators (including Split for sub-communicators,
// used by SIONlib to group the tasks sharing one physical file), eager
// point-to-point messaging, and the usual collectives (Barrier, Bcast,
// Gather(v), Scatter(v), Allgather, Allreduce) implemented over
// point-to-point transfers with binomial-tree fan-in/out where profitable —
// the same communication structure a real MPI would use, so the simulated
// collective costs scale the same way (O(log P) barriers/bcasts, linear
// root-centric gathers).
//
// The runtime has two modes sharing all code paths:
//
//   - Real mode (Run): ranks are plain goroutines synchronizing through
//     channels; used by the examples and utilities on the real file system.
//   - Simulated mode (RunSim): ranks are vtime processes; every message
//     advances virtual clocks by latency + size/bandwidth, making metadata-
//     exchange costs part of the reproduced experiments.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/vtime"
)

// CostModel prices a message for simulated mode.
type CostModel struct {
	// Latency is the per-message latency in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes/second (0 = infinite).
	Bandwidth float64
}

// Transfer returns the wire time of an n-byte message.
func (c CostModel) Transfer(n int) float64 {
	t := c.Latency
	if c.Bandwidth > 0 {
		t += float64(n) / c.Bandwidth
	}
	return t
}

// DefaultCost approximates a Blue Gene/P-class interconnect.
var DefaultCost = CostModel{Latency: 3e-6, Bandwidth: 400e6}

// world holds the per-run shared state: one mailbox per global rank.
type world struct {
	n     int
	boxes []*mailbox
	cost  CostModel
	sim   bool

	splitMu sync.Mutex
	splits  map[string]*splitTable
}

// splitAssign is one rank's result of a Split.
type splitAssign struct {
	group []int // shared, read-only
	rank  int
	color int
}

// splitTable holds a Split's assignments until every participant has
// collected its entry.
type splitTable struct {
	assign  map[int]splitAssign
	readers int
}

// storeSplit publishes the assignments of one collective Split call.
func (w *world) storeSplit(token string, assign map[int]splitAssign, readers int) {
	w.splitMu.Lock()
	defer w.splitMu.Unlock()
	if w.splits == nil {
		w.splits = make(map[string]*splitTable)
	}
	w.splits[token] = &splitTable{assign: assign, readers: readers}
}

// takeSplit retrieves one rank's assignment; the last reader frees the
// table.
func (w *world) takeSplit(token string, rank int) (splitAssign, bool) {
	w.splitMu.Lock()
	defer w.splitMu.Unlock()
	t := w.splits[token]
	if t == nil {
		return splitAssign{}, false
	}
	a, ok := t.assign[rank]
	t.readers--
	if t.readers == 0 {
		delete(w.splits, token)
	}
	return a, ok
}

// msgKey matches a message to a receive: communicator context, global
// source rank, and tag.
type msgKey struct {
	cid string
	src int
	tag int
}

type message struct {
	data    []byte
	arrival float64 // simulated arrival time (sim mode)
}

// mailbox is one rank's incoming-message store.
type mailbox struct {
	mu      sync.Mutex
	queue   map[msgKey][]message
	waitKey msgKey
	waiting bool
	waitCh  chan message // real mode hand-off
	proc    *vtime.Proc  // sim mode process (nil in real mode)
}

func newMailbox() *mailbox {
	return &mailbox{queue: make(map[msgKey][]message), waitCh: make(chan message, 1)}
}

// Comm is a communicator: an ordered group of ranks that can exchange
// messages and run collectives. The zero value is not usable; obtain a Comm
// from Run, RunSim, or Split.
type Comm struct {
	w      *world
	cid    string // context id isolating this communicator's traffic
	rank   int    // rank within this communicator
	group  []int  // global rank of each member
	splits int    // collective Split counter (consistent across members)
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns the caller's rank in the world communicator.
func (c *Comm) GlobalRank() int { return c.group[c.rank] }

// Proc returns the vtime process backing this rank in simulated mode, or
// nil in real mode. The experiment harness uses it to bind simulated
// file-system views to ranks.
func (c *Comm) Proc() *vtime.Proc { return c.w.boxes[c.group[c.rank]].proc }

// Now returns the rank's virtual time in simulated mode, 0 in real mode.
func (c *Comm) Now() float64 {
	if p := c.Proc(); p != nil {
		return p.Now()
	}
	return 0
}

// Advance advances the rank's virtual clock by dt seconds (compute time);
// it is a no-op in real mode.
func (c *Comm) Advance(dt float64) {
	if p := c.Proc(); p != nil {
		p.Advance(dt)
	}
}

// Run executes body on n ranks in real mode and returns when all finish.
func Run(n int, body func(*Comm)) {
	if n <= 0 {
		panic("mpi: Run with n <= 0")
	}
	w := &world{n: n, cost: CostModel{}, sim: false}
	w.boxes = make([]*mailbox, n)
	group := make([]int, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		group[i] = i
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		c := &Comm{w: w, cid: "w", rank: r, group: group}
		go func() {
			defer wg.Done()
			body(c)
		}()
	}
	wg.Wait()
}

// RunSim executes body on n ranks as vtime processes on engine e with the
// given message cost model, then runs the engine to completion. Each rank's
// virtual clock starts at 0.
func RunSim(e *vtime.Engine, n int, cost CostModel, body func(*Comm)) {
	if n <= 0 {
		panic("mpi: RunSim with n <= 0")
	}
	w := &world{n: n, cost: cost, sim: true}
	w.boxes = make([]*mailbox, n)
	group := make([]int, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		group[i] = i
	}
	for r := 0; r < n; r++ {
		r := r
		c := &Comm{w: w, cid: "w", rank: r, group: group}
		box := w.boxes[r]
		e.Spawn(0, func(p *vtime.Proc) {
			box.proc = p
			body(c)
		})
	}
	e.Run()
}

// Send delivers data to rank `to` (communicator rank) with the given tag.
// Sends are eager and buffered: Send never blocks waiting for the receiver.
// The data slice is copied, so the caller may reuse it immediately.
func (c *Comm) Send(to, tag int, data []byte) {
	if to < 0 || to >= len(c.group) {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", to, len(c.group)))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	dst := c.w.boxes[c.group[to]]
	key := msgKey{c.cid, c.group[c.rank], tag}
	m := message{data: buf}

	if c.w.sim {
		p := c.Proc()
		m.arrival = p.Now() + c.w.cost.Transfer(len(data))
		// Sender-side overhead: the latency portion occupies the sender.
		p.Advance(c.w.cost.Latency)
		dst.mu.Lock()
		if dst.waiting && dst.waitKey == key {
			dst.waiting = false
			dst.waitCh <- m
			dst.mu.Unlock()
			p.WakeAt(dst.proc, m.arrival)
			return
		}
		dst.queue[key] = append(dst.queue[key], m)
		dst.mu.Unlock()
		return
	}

	dst.mu.Lock()
	if dst.waiting && dst.waitKey == key {
		dst.waiting = false
		dst.waitCh <- m
		dst.mu.Unlock()
		return
	}
	dst.queue[key] = append(dst.queue[key], m)
	dst.mu.Unlock()
}

// Recv blocks until a message from rank `from` with the given tag arrives
// and returns its payload.
func (c *Comm) Recv(from, tag int) []byte {
	if from < 0 || from >= len(c.group) {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d (size %d)", from, len(c.group)))
	}
	box := c.w.boxes[c.group[c.rank]]
	key := msgKey{c.cid, c.group[from], tag}

	box.mu.Lock()
	if q := box.queue[key]; len(q) > 0 {
		m := q[0]
		if len(q) == 1 {
			delete(box.queue, key)
		} else {
			box.queue[key] = q[1:]
		}
		box.mu.Unlock()
		if c.w.sim {
			p := c.Proc()
			if m.arrival > p.Now() {
				p.AdvanceTo(m.arrival)
			}
			// Receive-side processing overhead: a root draining a linear
			// gather pays per message, as a real MPI rank would.
			p.Advance(c.w.cost.Latency)
		}
		return m.data
	}
	if box.waiting {
		box.mu.Unlock()
		panic("mpi: concurrent Recv on one rank")
	}
	box.waiting = true
	box.waitKey = key
	box.mu.Unlock()

	if c.w.sim {
		// Block in virtual time; the sender wakes us at the arrival time.
		c.Proc().Block()
		m := <-box.waitCh
		c.Proc().Advance(c.w.cost.Latency) // receive-side overhead
		return m.data
	}
	m := <-box.waitCh
	return m.data
}

// TryRecv performs a non-blocking receive: if a message from rank `from`
// with the given tag is available, it returns (payload, true), otherwise
// (nil, false) immediately. In simulated mode a queued message counts as
// available only once its arrival time has passed the caller's virtual
// clock (a real MPI_Iprobe cannot see in-flight data either), and the
// receive-side latency is charged only on success; an empty probe is free.
//
// Sends are eager and buffered (Send never blocks), so Send+TryRecv
// together provide the overlap of MPI_Isend/MPI_Irecv: the async
// collective flusher of internal/core polls member data with TryRecv
// while computation proceeds.
func (c *Comm) TryRecv(from, tag int) ([]byte, bool) {
	if from < 0 || from >= len(c.group) {
		panic(fmt.Sprintf("mpi: TryRecv from invalid rank %d (size %d)", from, len(c.group)))
	}
	box := c.w.boxes[c.group[c.rank]]
	key := msgKey{c.cid, c.group[from], tag}

	var now float64
	if c.w.sim {
		now = c.Proc().Now()
	}
	box.mu.Lock()
	q := box.queue[key]
	if len(q) == 0 || (c.w.sim && q[0].arrival > now) {
		box.mu.Unlock()
		return nil, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(box.queue, key)
	} else {
		box.queue[key] = q[1:]
	}
	box.mu.Unlock()
	if c.w.sim {
		c.Proc().Advance(c.w.cost.Latency) // receive-side overhead
	}
	return m.data, true
}
