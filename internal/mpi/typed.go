package mpi

import "encoding/binary"

// encodeInt64s packs vals little-endian.
func encodeInt64s(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// decodeInt64s unpacks a little-endian int64 slice.
func decodeInt64s(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic("mpi: decodeInt64s on odd-length buffer")
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func takeUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		panic("mpi: bad uvarint")
	}
	return v, n
}

// GatherInt64 gathers one int64 per rank at root (rank order); nil on
// non-root ranks. SIONlib uses this shape to collect per-task chunk sizes
// and written-byte counts at the master (paper §3.1).
func (c *Comm) GatherInt64(root int, val int64) []int64 {
	parts := c.Gatherv(root, encodeInt64s([]int64{val}))
	if parts == nil {
		return nil
	}
	out := make([]int64, len(parts))
	for i, p := range parts {
		out[i] = decodeInt64s(p)[0]
	}
	return out
}

// ScatterInt64 distributes one int64 per rank from root and returns the
// caller's value. SIONlib uses this shape to hand each task its chunk start
// address (paper §3.1).
func (c *Comm) ScatterInt64(root int, vals []int64) int64 {
	var parts [][]byte
	if c.rank == root {
		parts = make([][]byte, len(vals))
		for i, v := range vals {
			parts[i] = encodeInt64s([]int64{v})
		}
	}
	return decodeInt64s(c.Scatterv(root, parts))[0]
}

// GatherInt64Slice gathers a variable-length int64 slice per rank at root.
// The root decodes into one flat backing array and returns per-rank slice
// views into it instead of one allocation per rank: this sits on the
// ParOpen critical path (chunk-size and block-count gathers), where a
// 64 Ki-task open would otherwise pay 64 Ki root-side allocations.
func (c *Comm) GatherInt64Slice(root int, vals []int64) [][]int64 {
	parts := c.Gatherv(root, encodeInt64s(vals))
	if parts == nil {
		return nil
	}
	total := 0
	for _, p := range parts {
		total += len(p) / 8
	}
	flat := make([]int64, total)
	out := make([][]int64, len(parts))
	off := 0
	for i, p := range parts {
		n := len(p) / 8
		view := flat[off : off+n : off+n]
		for j := range view {
			view[j] = int64(binary.LittleEndian.Uint64(p[8*j:]))
		}
		out[i] = view
		off += n
	}
	return out
}

// ScatterInt64Slice distributes one variable-length int64 slice per rank
// from root and returns the caller's slice. The root flat-encodes all
// parts into one buffer and hands Scatterv per-rank views (Send copies,
// so the shared backing array is safe), avoiding one allocation per rank
// on the ParOpen critical path.
func (c *Comm) ScatterInt64Slice(root int, vals [][]int64) []int64 {
	var parts [][]byte
	if c.rank == root {
		total := 0
		for _, v := range vals {
			total += len(v)
		}
		flat := make([]byte, 8*total)
		parts = make([][]byte, len(vals))
		off := 0
		for i, v := range vals {
			end := off + 8*len(v)
			view := flat[off:end:end]
			for j, x := range v {
				binary.LittleEndian.PutUint64(view[8*j:], uint64(x))
			}
			parts[i] = view
			off = end
		}
	}
	return decodeInt64s(c.Scatterv(root, parts))
}

// BcastInt64s broadcasts an int64 slice from root.
func (c *Comm) BcastInt64s(root int, vals []int64) []int64 {
	var enc []byte
	if c.rank == root {
		enc = encodeInt64s(vals)
	}
	return decodeInt64s(c.Bcast(root, enc))
}
