// Top-level benchmarks: one per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment at a reduced scale
// (so `go test -bench=.` completes in minutes) and reports the headline
// simulated quantity as a custom metric. cmd/sionbench runs the same
// experiments at the paper's full scale.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/expt"
)

// benchScale divides the paper's task counts and data volumes.
const benchScale = 16

// lastFloat extracts the trailing numeric cell of a row (strips units).
func lastFloat(cells []string, col int) float64 {
	s := strings.TrimSuffix(strings.TrimSpace(cells[col]), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func benchExperiment(b *testing.B, name string, metric func(r *expt.Result) (float64, string)) {
	b.Helper()
	run := expt.ByName(name)
	if run == nil {
		b.Fatalf("unknown experiment %s", name)
	}
	var res *expt.Result
	for i := 0; i < b.N; i++ {
		res = run(benchScale)
	}
	if v, unit := metric(res); unit != "" {
		b.ReportMetric(v, unit)
	}
}

// BenchmarkFig3aFileCreation regenerates Fig. 3a (Jugene file creation vs
// SION create); the metric is the simulated creation time of the largest
// configuration's task-local files.
func BenchmarkFig3aFileCreation(b *testing.B) {
	benchExperiment(b, "fig3a", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-create-s"
	})
}

// BenchmarkFig3bFileCreation regenerates Fig. 3b (Jaguar).
func BenchmarkFig3bFileCreation(b *testing.B) {
	benchExperiment(b, "fig3b", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-create-s"
	})
}

// BenchmarkFig4aBandwidthVsFiles regenerates Fig. 4a; the metric is the
// saturated write bandwidth (last row).
func BenchmarkFig4aBandwidthVsFiles(b *testing.B) {
	benchExperiment(b, "fig4a", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-MB/s"
	})
}

// BenchmarkFig4bStriping regenerates Fig. 4b (Jaguar striping configs).
func BenchmarkFig4bStriping(b *testing.B) {
	benchExperiment(b, "fig4b", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-MB/s"
	})
}

// BenchmarkTable1Alignment regenerates Table 1; the metric is the
// write-degradation ratio of misaligned chunks.
func BenchmarkTable1Alignment(b *testing.B) {
	benchExperiment(b, "tab1", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "align-ratio"
	})
}

// BenchmarkFig5aSionVsTaskLocal regenerates Fig. 5a (Jugene).
func BenchmarkFig5aSionVsTaskLocal(b *testing.B) {
	benchExperiment(b, "fig5a", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-MB/s"
	})
}

// BenchmarkFig5bSionVsTaskLocal regenerates Fig. 5b (Jaguar).
func BenchmarkFig5bSionVsTaskLocal(b *testing.B) {
	benchExperiment(b, "fig5b", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 1), "sim-MB/s"
	})
}

// BenchmarkFig6MP2CRestart regenerates Fig. 6; the metric is the baseline/
// SION write-time ratio at 33 Mio particles.
func BenchmarkFig6MP2CRestart(b *testing.B) {
	benchExperiment(b, "fig6", func(r *expt.Result) (float64, string) {
		for _, row := range r.Rows {
			if row[0] == "33" {
				return lastFloat(row, 3) / lastFloat(row, 1), "speedup-33Mio"
			}
		}
		return 0, ""
	})
}

// BenchmarkTable2ScalascaActivation regenerates Table 2; the metric is the
// activation speedup.
func BenchmarkTable2ScalascaActivation(b *testing.B) {
	benchExperiment(b, "tab2", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[len(r.Rows)-1], 3), "activation-speedup"
	})
}

// BenchmarkTable3CollectiveIO regenerates the collective-I/O request-
// reduction table; the metric is the direct/async-collective write-time
// ratio (how much the async collective subsystem buys on the small-record
// workload).
func BenchmarkTable3CollectiveIO(b *testing.B) {
	benchExperiment(b, "tab3", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[0], 5) / lastFloat(r.Rows[2], 5), "write-speedup"
	})
}

// BenchmarkTable4BufferedIO regenerates the buffered-staging request-
// reduction table; the metric is the direct/buffered-auto write-time
// ratio (how much direct-path write-behind buys on the small-record
// workload).
func BenchmarkTable4BufferedIO(b *testing.B) {
	benchExperiment(b, "tab4", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[0], 3) / lastFloat(r.Rows[2], 3), "write-speedup"
	})
}

// BenchmarkTable5MappedReopen regenerates the rescaled-reopen table; the
// metric is the direct/collective read-request ratio of the last reader
// configuration (M > N), i.e. how many physical reads the mapped
// collectors save on a rescaled restart.
func BenchmarkTable5MappedReopen(b *testing.B) {
	benchExperiment(b, "tab5", func(r *expt.Result) (float64, string) {
		last := len(r.Rows) - 1
		return lastFloat(r.Rows[last-1], 4) / lastFloat(r.Rows[last], 4), "read-request-reduction"
	})
}

// BenchmarkTable6Serve regenerates the read-serving table; the metric is
// the uncached/served backend read-request ratio of the big-cache row —
// how many backend requests the serving subsystem (sharded block cache +
// coalesced span fetches) saves on the zipfian client workload.
func BenchmarkTable6Serve(b *testing.B) {
	benchExperiment(b, "tab6", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[0], 4) / lastFloat(r.Rows[1], 4), "backend-read-reduction"
	})
}

// BenchmarkTable7Tailing regenerates the live-tailing table; the metric
// is the number of verified injected-crash trials (the streaming lag,
// torn-record, and byte-identity bounds are asserted inside the
// experiment, so the run fails loudly rather than reporting a bad
// number). The trial count is fixed and the simulation deterministic, so
// the metric doubles as a regression tripwire for the crash sweep.
func BenchmarkTable7Tailing(b *testing.B) {
	benchExperiment(b, "tab7", func(r *expt.Result) (float64, string) {
		verified := strings.Split(r.Rows[1][7], "/")[0]
		v, err := strconv.ParseFloat(verified, 64)
		if err != nil {
			b.Fatalf("tab7 verified cell %q: %v", r.Rows[1][7], err)
		}
		return v, "crash-trials-verified"
	})
}

// BenchmarkTable8Chaos regenerates the transient-fault chaos table; the
// metrics are the retries the bounded-backoff budgets absorbed across the
// storm phases (nonzero by construction — the seeded fault storm always
// injects — and gated lower-better, so a retry storm blowing past the
// tolerance fails CI) and the give-ups of the phases that guarantee full
// absorption (the retry-budget serve storm, the writer storm, and the
// no-injection guard), which must stay exactly zero: benchjson refuses
// any movement on a baseline-zero "giveups" metric.
func BenchmarkTable8Chaos(b *testing.B) {
	benchExperiment(b, "tab8", func(r *expt.Result) (float64, string) {
		const colRetries, colGiveUps = 4, 5
		var giveups float64
		// Rows 1 (retry serve storm), 2 (writer storm), 4 (no-injection)
		// promise zero give-ups; row 0 (no-retry) and row 3 (breaker
		// drill) give up by design.
		for _, i := range []int{1, 2, 4} {
			giveups += lastFloat(r.Rows[i], colGiveUps)
		}
		b.ReportMetric(giveups, "chaos-giveups")
		return lastFloat(r.Rows[1], colRetries) + lastFloat(r.Rows[2], colRetries), "chaos-retries"
	})
}

// BenchmarkTable9Cluster regenerates the clustered serving-tier table;
// the metric is the independent-caches/cluster backend read-request
// ratio — how much the consistent-hash ring with peer fill and hot
// replication saves over N independent caches on the same zipfian storm.
// Byte identity (including across join/leave churn), the bounded churn
// tail, and seed-exact replay are asserted inside the experiment, so the
// run fails loudly rather than reporting a bad number.
func BenchmarkTable9Cluster(b *testing.B) {
	benchExperiment(b, "tab9", func(r *expt.Result) (float64, string) {
		return lastFloat(r.Rows[0], 3) / lastFloat(r.Rows[1], 3), "backend-read-reduction"
	})
}

// BenchmarkTable10Backends regenerates the backend auto-tuning table; the
// metric is the auto-tuned arm's total object-store request count, gated
// lower-better (the "objstore-requests" unit): a geometry regression that
// starts paying staged copies or per-record GETs again fails CI. Byte
// identity across backends and the ≥2× reduction versus POSIX-tuned
// geometry are asserted inside the experiment, so the run fails loudly
// rather than reporting a bad number.
func BenchmarkTable10Backends(b *testing.B) {
	benchExperiment(b, "tab10", func(r *expt.Result) (float64, string) {
		const colTotal = 7
		return lastFloat(r.Rows[2], colTotal), "objstore-requests"
	})
}
