// Tracing: a Scalasca-style workflow (paper §5.2) on 8 parallel tasks.
// Each task records an SMG2000-like event stream, the traces are flushed
// zlib-compressed into a SION multifile at measurement finalization, and a
// parallel post-mortem analysis loads every rank's trace through the
// serial task-local view and searches for late-sender wait states.
//
// Run with: go run ./examples/tracing [dir]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)
	const ntasks = 8

	// Measurement: record and flush at finalization (multifile, 2 segments).
	mpi.Run(ntasks, func(c *mpi.Comm) {
		tr := trace.NewTracer(c.Rank())
		trace.SMGWorkload(tr, c.Rank(), ntasks, 64<<10)
		if c.Rank() == 3 {
			// Task 3 dawdles before its sends: a deliberate late sender.
			tr.Advance(0.25)
			tr.Send(uint32((c.Rank()+1)%ntasks), 9999, 1<<16)
		}
		if err := trace.FlushSION(c, fsys, "smg.sion", tr, 2); err != nil {
			log.Fatalf("rank %d: flush: %v", c.Rank(), err)
		}
		if c.Rank() == 0 {
			fmt.Printf("flushed %d ranks' compressed traces into smg.sion\n", ntasks)
		}
	})

	// Post-mortem parallel analysis (reads via the serial rank view).
	mpi.Run(ntasks, func(c *mpi.Comm) {
		events, err := trace.ReadSION(fsys, "smg.sion", c.Rank())
		if err != nil {
			log.Fatalf("rank %d: read: %v", c.Rank(), err)
		}
		if c.Rank() == 0 {
			rt := trace.RegionTime(events)
			fmt.Printf("rank 0: %d events; region times: %v\n", len(events), rt)
		}
		if c.Rank() == 4 {
			// Rank 4 is task 3's neighbour: it receives the late message.
			// (The workload's ring receive of tag 9999 is unmatched there,
			// so no extra receive is needed for this demo.)
			_ = events
		}
		waits, err := trace.AnalyzeLateSenders(c, func(rank int) ([]trace.Event, error) {
			return trace.ReadSION(fsys, "smg.sion", rank)
		})
		if err != nil {
			log.Fatalf("rank %d: analysis: %v", c.Rank(), err)
		}
		for _, w := range waits {
			fmt.Printf("rank %d: late sender %d -> %d (tag %d): wait %.3fs\n",
				w.Recver, w.Sender, w.Recver, w.Tag, w.WaitTime)
		}
	})
}
