// Hybrid: thread-local streams inside task-local files via the key-value
// mode. The paper's §6 roadmap discusses support for hybrid MPI/OpenMP
// codes, where thread-local data must currently be managed at the
// application level; the key-value records (mirroring SIONlib's
// sion_fwrite_key) let every "thread" of a task write under its own key
// into the task's chunks, and readers retrieve each per-thread stream.
//
// Run with: go run ./examples/hybrid [dir]
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

const (
	ntasks   = 4
	nthreads = 3
	nrecords = 5
)

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)

	mpi.Run(ntasks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "hybrid.sion", sion.WriteMode,
			&sion.Options{ChunkSize: 4096})
		if err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		kw, err := sion.NewKeyWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		// Threads produce records concurrently; the write into the shared
		// task stream is serialized, as OpenMP threads would serialize
		// their SIONlib calls.
		var mu sync.Mutex
		var wg sync.WaitGroup
		for tid := 0; tid < nthreads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for i := 0; i < nrecords; i++ {
					rec := fmt.Sprintf("task%d/thread%d/rec%d;", c.Rank(), tid, i)
					mu.Lock()
					err := kw.WriteKey(uint64(tid), []byte(rec))
					mu.Unlock()
					if err != nil {
						log.Fatal(err)
					}
				}
			}(tid)
		}
		wg.Wait()
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})

	// Post-mortem: extract thread 1's stream of task 2.
	f, err := sion.OpenRank(fsys, "hybrid.sion", 2)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	kr, err := sion.NewKeyReader(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task 2 holds thread keys %v\n", kr.Keys())
	stream, err := kr.ReadKey(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task 2, thread 1 stream (%d records): %s\n", kr.NumRecords(1), stream)
}
