// Checkpoint: an MP2C-style particle simulation (paper §5.1) running on 16
// parallel tasks with 3-D domain decomposition. It advances the system,
// writes a restart file through SIONlib (52-byte particle records, all
// task-local files in one physical file), clobbers the in-memory state,
// restores it from the multifile, and verifies the restart bit-exactly.
// It then compares against the original single-file-sequential method.
//
// Run with: go run ./examples/checkpoint [dir]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/fsio"
	"repro/internal/mp2c"
	"repro/internal/mpi"
)

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)
	const (
		ntasks  = 16
		perTask = 5000
		steps   = 3
	)

	mpi.Run(ntasks, func(c *mpi.Comm) {
		sys := mp2c.NewSystem(c, perTask, 42)
		for i := 0; i < steps; i++ {
			sys.Step()
		}
		saved := append([]mp2c.Particle(nil), sys.Particles...)

		// Checkpoint through SIONlib, like the paper's MP2C integration.
		t0 := time.Now()
		if err := mp2c.CheckpointSION(c, fsys, "mp2c-restart.sion", sys, 1); err != nil {
			log.Fatalf("rank %d: checkpoint: %v", c.Rank(), err)
		}
		tSion := time.Since(t0)

		// Baseline: the original single-file sequential method.
		t1 := time.Now()
		if err := mp2c.CheckpointSingleSequential(c, fsys, "mp2c-restart.bin", sys, 1<<20); err != nil {
			log.Fatalf("rank %d: sequential checkpoint: %v", c.Rank(), err)
		}
		tSeq := time.Since(t1)

		// Destroy the state and restart from the multifile.
		sys.Particles = nil
		if err := mp2c.RestartSION(c, fsys, "mp2c-restart.sion", sys); err != nil {
			log.Fatalf("rank %d: restart: %v", c.Rank(), err)
		}
		sort.Slice(sys.Particles, func(i, j int) bool { return sys.Particles[i].ID < sys.Particles[j].ID })
		sort.Slice(saved, func(i, j int) bool { return saved[i].ID < saved[j].ID })
		if len(sys.Particles) != len(saved) {
			log.Fatalf("rank %d: restored %d particles, had %d", c.Rank(), len(sys.Particles), len(saved))
		}
		for i := range saved {
			if sys.Particles[i] != saved[i] {
				log.Fatalf("rank %d: particle %d differs after restart", c.Rank(), i)
			}
		}
		if c.Rank() == 0 {
			fmt.Printf("%d tasks x %d particles (%d-byte records)\n",
				ntasks, perTask, mp2c.ParticleBytes)
			fmt.Printf("restart verified bit-exact after %d steps\n", steps)
			fmt.Printf("checkpoint wall time: SIONlib %v, single-file sequential %v\n", tSion, tSeq)
		}
	})
}
