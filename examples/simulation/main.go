// Simulation: drive the simulated Jugene machine (Blue Gene/P + GPFS
// model) directly from the public API — a miniature version of the
// paper's Fig. 3 and Fig. 5 experiments that completes in seconds. It
// shows how the discrete-event machinery behind cmd/sionbench composes:
// a vtime engine, the message-passing runtime in simulated mode, and
// per-task file-system views.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/simfs"
	"repro/internal/vtime"
)

const ntasks = 2048

func main() {
	fmt.Printf("simulated Jugene, %d tasks\n\n", ntasks)

	// 1. Creating one file per task vs one SION multifile (Fig. 3 at
	// reduced scale).
	fs := simfs.New(simfs.Jugene())
	tCreate := run(fs, func(c *mpi.Comm, v fsio.FileSystem) {
		fh, err := v.Create(fmt.Sprintf("d/task-%05d", c.Rank()))
		if err == nil {
			fh.Close()
		}
	})
	fs2 := simfs.New(simfs.Jugene())
	tSion := run(fs2, func(c *mpi.Comm, v fsio.FileSystem) {
		f, err := sion.ParOpen(c, v, "d/all.sion", sion.WriteMode,
			&sion.Options{ChunkSize: 2 << 20})
		if err == nil {
			f.Close()
		}
	})
	fmt.Printf("parallel creation of %d task-local files: %6.1f s (simulated)\n", ntasks, tCreate)
	fmt.Printf("creation of one SION multifile:            %6.1f s (simulated)\n", tSion)
	fmt.Printf("-> %.0fx faster\n\n", tCreate/tSion)

	// 2. Writing 32 GB through the multifile (Fig. 5 flavour).
	const total = 32 << 30
	fs3 := simfs.New(simfs.Jugene())
	tWrite := run(fs3, func(c *mpi.Comm, v fsio.FileSystem) {
		per := int64(total / ntasks)
		f, err := sion.ParOpen(c, v, "d/data.sion", sion.WriteMode,
			&sion.Options{ChunkSize: per, NFiles: 32})
		if err != nil {
			panic(err)
		}
		if err := f.WriteSynthetic(per); err != nil {
			panic(err)
		}
		f.Close()
	})
	fmt.Printf("32 GB through a 32-segment multifile: %.1f s -> %.0f MB/s aggregate\n",
		tWrite, total/tWrite/1e6)
}

// run executes body on ntasks simulated ranks and returns the makespan.
func run(fs *simfs.FS, body func(c *mpi.Comm, v fsio.FileSystem)) float64 {
	e := vtime.NewEngine()
	var end float64
	mpi.RunSim(e, ntasks, mpi.DefaultCost, func(c *mpi.Comm) {
		body(c, fs.View(c.Rank(), c.Proc()))
		if t := c.Now(); t > end {
			end = t
		}
	})
	return end
}
