// Restart with a different task count: a job checkpoints its state with N
// tasks through SIONlib, then restarts with M tasks (M ≠ N) using mapped
// open — the sion_paropen_mapped scenario. Each of the M restart tasks
// takes over a balanced contiguous span of the original N writer ranks,
// reads every owned rank's logical file back, and verifies it bit-exactly;
// a second restart demonstrates the collective mapped read, where only
// ⌈M/group⌉ collector tasks touch the physical file.
//
// Run with: go run ./examples/restart [dir]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

const (
	nWriters = 16 // checkpointing job size
	nReaders = 6  // restart job size (rescaled down, and not a divisor)
	perRank  = 48 << 10
)

// state is writer rank g's in-memory domain: a deterministic byte pattern
// standing in for particles or grid cells.
func state(g int) []byte {
	out := make([]byte, perRank+g*97)
	x := uint32(g*2654435761 + 7)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)

	// Phase 1: checkpoint with N tasks (ordinary ParOpen write).
	mpi.Run(nWriters, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "restart.sion", sion.WriteMode, &sion.Options{
			ChunkSize: 16 << 10,
		})
		if err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
		if _, err := f.Write(state(c.Rank())); err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
	})
	fmt.Printf("checkpointed %d tasks into restart.sion\n", nWriters)

	// Phase 2: restart with M tasks. owned == nil picks the balanced
	// contiguous partition; pass explicit rank lists for custom layouts.
	restart := func(opts *sion.Options, label string) {
		mpi.Run(nReaders, func(c *mpi.Comm) {
			mf, err := sion.ParOpenMapped(c, fsys, "restart.sion", sion.ReadMode, nil, opts)
			if err != nil {
				log.Fatalf("reader %d: %v", c.Rank(), err)
			}
			defer mf.Close()
			var total int
			for _, g := range mf.OwnedRanks() {
				h, err := mf.Rank(g)
				if err != nil {
					log.Fatalf("reader %d: %v", c.Rank(), err)
				}
				got := make([]byte, h.LogicalSize())
				if _, err := h.Read(got); err != nil {
					log.Fatalf("reader %d rank %d: %v", c.Rank(), g, err)
				}
				if !bytes.Equal(got, state(g)) {
					log.Fatalf("reader %d: rank %d state differs after restart", c.Rank(), g)
				}
				total += len(got)
			}
			group, collector := mf.Collective()
			role := ""
			if group > 1 {
				role = " [member]"
				if collector {
					role = " [collector]"
				}
			}
			fmt.Printf("  %s: reader %d restored writer ranks %v (%d bytes)%s\n",
				label, c.Rank(), mf.OwnedRanks(), total, role)
		})
	}
	fmt.Printf("restarting with %d tasks, direct mapped read:\n", nReaders)
	restart(nil, "direct")
	fmt.Printf("restarting with %d tasks, collective mapped read (group 3):\n", nReaders)
	restart(&sion.Options{CollectorGroup: 3}, "collective")
	fmt.Println("restart verified bit-exact with a different task count")
}
