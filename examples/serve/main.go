// Serving a multifile to many concurrent clients: a job writes a
// checkpoint with N tasks, then a single serving process fronts it for a
// crowd of reader goroutines through internal/serve — the sharded block
// cache and per-file fetchers turn thousands of logical reads into a
// handful of dense backend span reads, while every client sees exactly
// the bytes its writer rank produced (including per-key record lookups).
//
// Run with: go run ./examples/serve [dir]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"sync"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
	"repro/internal/serve"
)

const (
	nWriters = 12
	nClients = 200
	perRank  = 32 << 10
)

// state is writer rank g's payload.
func state(g int) []byte {
	out := make([]byte, perRank+g*131)
	x := uint32(g*2654435761 + 77)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = byte(x >> 24)
	}
	return out
}

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)

	// Phase 1: write the multifile — plain payload plus one tagged record
	// per rank (key 7) so clients can demonstrate key lookups.
	mpi.Run(nWriters, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "serve.sion", sion.WriteMode, &sion.Options{
			ChunkSize: 16 << 10,
		})
		if err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
		w, err := sion.NewKeyWriter(f)
		if err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
		if err := w.WriteKey(7, state(c.Rank())); err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("writer %d: %v", c.Rank(), err)
		}
	})

	// Phase 2: one server, many concurrent clients.
	srv, err := serve.New(fsys, "serve.sion", &serve.Config{CacheBytes: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rank := c % nWriters
			h, err := srv.Open(rank)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			kr, err := h.KeyReader()
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			got, err := kr.ReadKey(7)
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			if !bytes.Equal(got, state(rank)) {
				log.Fatalf("client %d: rank %d bytes differ", c, rank)
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("served %d clients over %d ranks\n", nClients, nWriters)
	fmt.Printf("logical bytes served: %d\n", st.ServedBytes)
	fmt.Printf("backend span reads:   %d (%d bytes)\n", st.BackendReads, st.BackendBytes)
	fmt.Printf("cache hits/misses:    %d/%d (%.1f%% hit rate), %d resolved in flight\n",
		st.Hits, st.Misses, 100*float64(st.Hits)/float64(st.Hits+st.Misses), st.FlightHits)
	fmt.Println("all client reads verified bit-exactly against the written state")
}
