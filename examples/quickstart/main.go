// Quickstart: write task-local data from 8 parallel tasks into one SION
// multifile on the local file system, read it back in parallel, and
// inspect it with the serial global view — the minimal end-to-end use of
// the library (paper Listings 1, 2, and 5).
//
// Run with: go run ./examples/quickstart [dir]
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	sion "repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/mpi"
)

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fsys := fsio.NewOS(dir)
	const ntasks = 8

	// Parallel write (paper Listing 1): collective open, independent
	// writes, collective close.
	mpi.Run(ntasks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "quickstart.sion", sion.WriteMode,
			&sion.Options{ChunkSize: 1 << 16, NFiles: 2})
		if err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		payload := []byte(fmt.Sprintf("hello from task %d\n", c.Rank()))
		// ANSI-C style: make sure the chunk has room, then write.
		if err := f.EnsureFreeSpace(int64(len(payload))); err != nil {
			log.Fatal(err)
		}
		if _, err := f.Write(payload); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	})

	// Parallel read (paper Listing 2).
	mpi.Run(ntasks, func(c *mpi.Comm) {
		f, err := sion.ParOpen(c, fsys, "quickstart.sion", sion.ReadMode, nil)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		for !f.EOF() {
			chunk := make([]byte, f.BytesAvailInChunk())
			if _, err := io.ReadFull(f, chunk); err != nil {
				log.Fatal(err)
			}
			buf.Write(chunk)
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 read back: %q\n", buf.String())
		}
		f.Close()
	})

	// Serial global view (paper Listing 5): one process sees all tasks.
	sf, err := sion.Open(fsys, "quickstart.sion")
	if err != nil {
		log.Fatal(err)
	}
	defer sf.Close()
	loc := sf.Locations()
	fmt.Printf("multifile holds %d logical files in %d physical segments\n",
		loc.NTasks, loc.NFiles)
	for r := 0; r < loc.NTasks; r++ {
		data, err := sf.ReadRank(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  task %d (%d bytes): %s", r, len(data), data)
	}
}
